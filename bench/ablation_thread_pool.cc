// Ablation: SMPE thread-pool size (§III-C — the prototype defaults to 1000
// threads, "adjusted based on underlying hardware capabilities such as the
// number of CPU cores and the IOPS of the IO path").
//
// Sweeps threads-per-node for a fixed mid-selectivity Q5' job. Expected
// shape: wall time falls as the pool grows until the simulated devices
// saturate (num_nodes * io_slots concurrent I/Os), then flattens.

#include <cstdio>

#include "bench/bench_util.h"
#include "rede/smpe_executor.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::Engine engine(&cluster);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  tpch::Q5Params params = tpch::MakeQ5Params(0.1);
  auto job = tpch::BuildQ5RedeJob(engine, params);
  LH_CHECK(job.ok());

  bench::PrintHeader("Ablation — SMPE thread-pool size sweep (Q5', sel=0.1)");
  std::printf("device saturation point: %u nodes x %zu io-slots = %zu "
              "concurrent I/Os\n\n",
              cluster.num_nodes(), cluster_config.io_slots,
              cluster.num_nodes() * cluster_config.io_slots);
  std::printf("%-18s %12s %12s %10s\n", "threads/node", "wall-ms", "rows",
              "peak-par");

  cluster.SetTimingEnabled(true);
  for (size_t threads : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    rede::SmpeOptions options;
    options.threads_per_node = threads;
    options.trace_sample_n = trace_capture.sample_n();
    rede::SmpeExecutor executor(&cluster, options);
    uint64_t rows = 0;
    auto result =
        executor.Execute(*job, [&rows](const rede::Tuple&) { ++rows; });
    LH_CHECK(result.ok());
    trace_capture.Observe(*result,
                          "Q5' threads/node=" + std::to_string(threads));
    std::printf("%-18zu %12.2f %12llu %10lld\n", threads,
                result->metrics.wall_ms,
                static_cast<unsigned long long>(rows),
                static_cast<long long>(result->metrics.peak_parallel_derefs));
  }
  std::printf(
      "\nExpected shape: time drops steeply while the pool is the "
      "bottleneck and bottoms out once peak parallelism reaches device "
      "saturation; far larger pools slowly degrade again from scheduling "
      "and queue contention — which is why the paper notes the pool size "
      "should be 'adjusted based on underlying hardware capabilities'.\n");
  return 0;
}
