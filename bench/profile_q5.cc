// Query-profiler demo — runs one traced TPC-H Q5' under SMPE, prints the
// per-stage/per-node JobProfile, writes the Chrome trace_event JSON (load
// it at chrome://tracing or ui.perfetto.dev), and measures the tracing
// overhead by timing the same job with tracing off.
//
//   ./build/bench/profile_q5 [--trace-out=PATH]      (default /tmp/q5.trace.json)
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS,
// LH_BENCH_REPS (overhead-measurement repetitions, default 5).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "obs/chrome_trace.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

/// Median wall-ms of `reps` runs of the job on `engine` (SMPE mode).
double MedianWallMs(rede::Engine& engine, const rede::Job& job, int reps) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    auto result = engine.Execute(job, rede::ExecutionMode::kSmpe, nullptr);
    LH_CHECK(result.ok());
    times.push_back(result->metrics.wall_ms);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "/tmp/q5.trace.json";
  constexpr const char* kFlag = "--trace-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      trace_path = argv[i] + std::strlen(kFlag);
    }
  }

  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 8));
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));

  rede::EngineOptions traced_options;
  traced_options.smpe.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 125));
  traced_options.smpe.trace_sample_n = 1;
  rede::Engine engine(&cluster, traced_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  tpch::Q5Params params = tpch::MakeQ5Params(0.01);
  auto job = tpch::BuildQ5RedeJob(engine, params);
  LH_CHECK(job.ok());

  bench::PrintHeader("Query profiler demo — traced TPC-H Q5' (sel=0.01)");
  cluster.SetTimingEnabled(true);

  // --- the profiled run ----------------------------------------------------
  uint64_t rows = 0;
  auto traced = engine.Execute(*job, rede::ExecutionMode::kSmpe,
                               [&rows](const rede::Tuple&) { ++rows; });
  LH_CHECK(traced.ok());
  LH_CHECK_MSG(traced->trace != nullptr, "run was not traced");

  obs::JobProfile profile = rede::ProfileOf(*traced);
  std::printf("%s\n", profile.ToText().c_str());
  LH_CHECK_MSG(profile.Reconciles(),
               "trace does not reconcile with the executor's counters");

  Status write_status = obs::WriteChromeTraceFile(*traced->trace, trace_path);
  LH_CHECK_MSG(write_status.ok(), write_status.ToString().c_str());
  std::printf("chrome trace (%zu spans) written to %s\n",
              traced->trace->spans.size(), trace_path.c_str());

  // --- tracing overhead ----------------------------------------------------
  const int reps = static_cast<int>(bench::EnvOr("LH_BENCH_REPS", 5));
  rede::EngineOptions untraced_options = traced_options;
  untraced_options.smpe.trace_sample_n = 0;
  rede::Engine untraced_engine(&cluster, untraced_options);
  // Untraced first so neither side benefits from warmup order alone.
  const double untraced_ms = MedianWallMs(untraced_engine, *job, reps);
  const double traced_ms = MedianWallMs(engine, *job, reps);
  std::printf(
      "\ntracing overhead (median of %d runs): untraced %.2f ms, traced "
      "%.2f ms (%+.1f%%)\n",
      reps, untraced_ms, traced_ms,
      untraced_ms > 0 ? (traced_ms / untraced_ms - 1.0) * 100.0 : 0.0);
  std::printf("rows=%llu\n", static_cast<unsigned long long>(rows));
  return 0;
}
