// Failover ablation: sweep replication factor × outage timing × hedged
// reads over the two pointer-chasing workloads — TPC-H Q5' and the claims
// warehouse Q1 — and measure what surviving a whole-node outage costs.
//
// Grid per workload (the rf=1 hedge cells are no-ops and skipped):
//   rf=1: outage {none, mid}             — the unreplicated seed layout;
//                                          a mid-query outage FAILS the job
//   rf=2: outage {none, mid} × hedge {off, on}
//
// The mid-query outage is driven by the result sink: once half of the
// baseline row count has streamed out, one node drops dead under the
// remaining half of the query. With replicas, dereferences fail over to the
// surviving copy BEFORE any retry backoff (retries stay disabled here) and
// the run completes with the baseline checksum; without, the run aborts
// kUnavailable — the contrast the `completed` column records.
//
// `added_reads` is the random-read delta vs the workload's rf=1/no-failure
// baseline: what replication (remote replica reads) and hedging (duplicate
// in-flight reads) cost in device operations. `wall_ms` against the
// baseline cell is the p99-style latency proxy (counting mode: wall time is
// executor overhead, not simulated device time).
//
// Output: one JSON object per cell on stdout, mirrored to
// BENCH_failover.json (override with LH_BENCH_OUT).
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS,
// LH_BENCH_CLAIMS, LH_BENCH_HEDGE_US, LH_BENCH_OUT.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/json.h"
#include "rede/engine.h"
#include "rede/smpe_executor.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

constexpr sim::NodeId kVictim = 1;

struct CellResult {
  bool completed = false;
  uint64_t rows = 0;
  std::string checksum;
  std::string error;
  uint64_t random_reads = 0;
  int64_t added_reads = 0;
  uint64_t failovers = 0;
  uint64_t replica_reads = 0;
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
  uint64_t broadcast_redirects = 0;
  double wall_ms = 0.0;
};

void EmitJson(FILE* out, const std::string& workload, uint32_t rf,
              const char* outage, bool hedge, const CellResult& r) {
  Json row = Json::MakeObject();
  row.Set("bench", Json::MakeString("failover"));
  row.Set("workload", Json::MakeString(workload));
  row.Set("replication_factor", Json::MakeNumber(static_cast<double>(rf)));
  row.Set("outage", Json::MakeString(outage));
  row.Set("hedge", Json::MakeNumber(hedge ? 1 : 0));
  row.Set("completed", Json::MakeNumber(r.completed ? 1 : 0));
  row.Set("rows", Json::MakeNumber(static_cast<double>(r.rows)));
  row.Set("checksum", Json::MakeString(r.checksum));
  row.Set("error", Json::MakeString(r.error));
  row.Set("random_reads",
          Json::MakeNumber(static_cast<double>(r.random_reads)));
  row.Set("added_reads", Json::MakeNumber(static_cast<double>(r.added_reads)));
  row.Set("failovers", Json::MakeNumber(static_cast<double>(r.failovers)));
  row.Set("replica_reads",
          Json::MakeNumber(static_cast<double>(r.replica_reads)));
  row.Set("hedged_reads",
          Json::MakeNumber(static_cast<double>(r.hedged_reads)));
  row.Set("hedge_wins", Json::MakeNumber(static_cast<double>(r.hedge_wins)));
  row.Set("broadcast_redirects",
          Json::MakeNumber(static_cast<double>(r.broadcast_redirects)));
  row.Set("wall_ms", Json::MakeNumber(r.wall_ms));
  std::string line = row.Dump();
  std::printf("%s\n", line.c_str());
  if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
}

/// Order-independent digest of a result summary's key strings.
std::string DigestKeys(uint64_t rows, const std::vector<std::string>& keys) {
  uint64_t digest = 1469598103934665603ull;  // FNV offset basis
  for (const std::string& key : keys) {
    digest ^= std::hash<std::string>{}(key);
    digest *= 1099511628211ull;  // FNV prime (keys arrive sorted)
  }
  return std::to_string(rows) + ":" + std::to_string(digest);
}

using Summarize = std::function<std::string(const std::vector<rede::Tuple>&,
                                            uint64_t*)>;

/// Run one cell. `outage_after` > 0 arms the sink-driven outage: after that
/// many output tuples, kVictim drops dead for the rest of the run.
CellResult RunCell(sim::Cluster& cluster, const rede::SmpeOptions& options,
                   const rede::Job& job, const Summarize& summarize,
                   uint64_t outage_after, bench::TraceCapture& trace_capture,
                   const std::string& cell_label) {
  rede::SmpeExecutor executor(&cluster, options);
  rede::TupleCollector collector;
  rede::ResultSink inner = collector.AsSink();
  std::atomic<uint64_t> emitted{0};
  rede::ResultSink sink = [&](const rede::Tuple& tuple) {
    if (outage_after > 0 &&
        emitted.fetch_add(1, std::memory_order_relaxed) + 1 == outage_after) {
      cluster.SetNodeOutage(kVictim, true);
    }
    inner(tuple);
  };

  sim::ResourceTotals before = cluster.TotalStats();
  auto result = executor.Execute(job, sink);
  sim::ResourceTotals after = cluster.TotalStats();
  cluster.SetNodeOutage(kVictim, false);

  CellResult cell;
  cell.random_reads = after.random_reads - before.random_reads;
  if (!result.ok()) {
    cell.error = result.status().ToString();
    return cell;
  }
  cell.completed = true;
  trace_capture.Observe(*result, cell_label);
  std::vector<rede::Tuple> tuples = collector.TakeTuples();
  cell.checksum = summarize(tuples, &cell.rows);
  cell.failovers = result->metrics.failovers;
  cell.replica_reads = result->metrics.replica_reads;
  cell.hedged_reads = result->metrics.hedged_reads;
  cell.hedge_wins = result->metrics.hedge_wins;
  cell.broadcast_redirects = result->metrics.broadcast_redirects;
  cell.wall_ms = result->metrics.wall_ms;
  return cell;
}

/// Everything needed to run one workload at one replication factor.
struct Workload {
  std::string name;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<rede::Engine> engine;
  std::unique_ptr<rede::Job> job;
  Summarize summarize;
};

struct SweepStats {
  uint64_t cells = 0;
  uint64_t completed = 0;
  uint64_t rf1_outage_failures = 0;
  uint64_t rf2_outage_completions = 0;
  bool checksums_agree = true;
};

/// Sweep one workload at one rf; `baseline` carries the rf=1/none cell's
/// reads+checksum across calls (filled on the rf=1 pass, read on rf=2).
void RunSweep(FILE* out, Workload& w, uint32_t rf,
              const rede::SmpeOptions& base_options, uint64_t hedge_us,
              CellResult* baseline, SweepStats* stats,
              bench::TraceCapture& trace_capture) {
  for (const char* outage : {"none", "mid"}) {
    const bool mid = std::string(outage) == "mid";
    for (int hedge = 0; hedge < (rf >= 2 ? 2 : 1); ++hedge) {
      rede::SmpeOptions options = base_options;
      options.trace_sample_n = trace_capture.sample_n();
      options.hedge.enabled = hedge != 0;
      options.hedge.deadline_us = hedge_us;
      // The rf=1/none cell runs first and fills `baseline`, so every mid
      // cell (including rf=1's own) sees the true halfway row count.
      const uint64_t half = (baseline->rows + 1) / 2;
      const uint64_t outage_after = mid ? (half > 0 ? half : 1) : 0;
      CellResult cell =
          RunCell(*w.cluster, options, *w.job, w.summarize, outage_after,
                  trace_capture,
                  w.name + " rf=" + std::to_string(rf) + " outage=" + outage +
                      (hedge != 0 ? " hedged" : ""));
      if (rf == 1 && !mid && hedge == 0 && baseline->checksum.empty()) {
        *baseline = cell;
      }
      cell.added_reads = static_cast<int64_t>(cell.random_reads) -
                         static_cast<int64_t>(baseline->random_reads);
      EmitJson(out, w.name, rf, outage, hedge != 0, cell);

      stats->cells++;
      if (cell.completed) stats->completed++;
      if (rf == 1 && mid && !cell.completed) stats->rf1_outage_failures++;
      if (rf == 2 && mid && cell.completed) stats->rf2_outage_completions++;
      if (cell.completed && !baseline->checksum.empty() &&
          cell.checksum != baseline->checksum) {
        stats->checksums_agree = false;
      }
    }
  }
}

Workload MakeTpch(const bench::BenchClusterConfig& cluster_config,
                  const rede::EngineOptions& engine_options,
                  const tpch::TpchData& data, uint32_t rf) {
  Workload w;
  w.name = "tpch_q5";
  w.cluster =
      std::make_unique<sim::Cluster>(bench::MakeClusterOptions(cluster_config));
  w.engine = std::make_unique<rede::Engine>(w.cluster.get(), engine_options);
  tpch::LoadOptions load;
  load.partitions = w.cluster->num_nodes() * 2;
  load.replication_factor = rf;
  LH_CHECK(tpch::LoadIntoLake(*w.engine, data, load).ok());
  auto job = tpch::BuildQ5RedeJob(*w.engine, tpch::MakeQ5Params(0.05));
  LH_CHECK(job.ok());
  w.job = std::make_unique<rede::Job>(*job);
  w.summarize = [](const std::vector<rede::Tuple>& tuples, uint64_t* rows) {
    auto summary = tpch::SummarizeRedeOutput(tuples);
    LH_CHECK(summary.ok());
    *rows = summary->rows;
    return DigestKeys(summary->rows, summary->keys);
  };
  return w;
}

Workload MakeClaims(const bench::BenchClusterConfig& cluster_config,
                    const rede::EngineOptions& engine_options,
                    const claims::ClaimsData& data, uint32_t rf) {
  Workload w;
  w.name = "claims_wh_q1";
  w.cluster =
      std::make_unique<sim::Cluster>(bench::MakeClusterOptions(cluster_config));
  w.engine = std::make_unique<rede::Engine>(w.cluster.get(), engine_options);
  claims::ClaimsLoadOptions load;
  load.replication_factor = rf;
  LH_CHECK(claims::LoadWarehouseClaims(*w.engine, data, load).ok());
  auto job = claims::BuildWarehouseClaimsJob(*w.engine, claims::Q1());
  LH_CHECK(job.ok());
  w.job = std::make_unique<rede::Job>(*job);
  w.summarize = [](const std::vector<rede::Tuple>& tuples, uint64_t* rows) {
    auto answer = claims::SummarizeWarehouseOutput(tuples);
    LH_CHECK(answer.ok());
    *rows = answer->distinct_claims;
    return std::to_string(answer->distinct_claims) + ":" +
           std::to_string(answer->total_expense);
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 8));

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 64));
  const uint64_t hedge_us =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_HEDGE_US", 0));

  tpch::TpchConfig tpch_config;
  tpch_config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData tpch_data = tpch::Generate(tpch_config);

  claims::ClaimsConfig claims_config;
  claims_config.num_claims =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_CLAIMS", 20000));
  claims::ClaimsData claims_data = claims::GenerateClaims(claims_config);

  const char* out_path_env = std::getenv("LH_BENCH_OUT");
  const std::string out_path =
      out_path_env != nullptr ? out_path_env : "BENCH_failover.json";
  FILE* out = std::fopen(out_path.c_str(), "w");
  LH_CHECK_MSG(out != nullptr, ("cannot open " + out_path).c_str());

  bench::PrintHeader(
      "Failover ablation — replication factor x outage timing x hedged "
      "reads");
  std::printf(
      "nodes=%u  SF=%.4f  claims=%llu  smpe-threads/node=%zu  "
      "hedge-deadline=%lluus  victim=node %u (mid-query outage at half the "
      "baseline output)\n\n",
      cluster_config.num_nodes, tpch_config.scale_factor,
      static_cast<unsigned long long>(claims_config.num_claims),
      engine_options.smpe.threads_per_node,
      static_cast<unsigned long long>(hedge_us), kVictim);

  SweepStats stats;
  for (int which = 0; which < 2; ++which) {
    CellResult baseline;  // filled by the rf=1/none cell of this workload
    for (uint32_t rf : {1u, 2u}) {
      Workload w = which == 0
                       ? MakeTpch(cluster_config, engine_options, tpch_data, rf)
                       : MakeClaims(cluster_config, engine_options,
                                    claims_data, rf);
      RunSweep(out, w, rf, engine_options.smpe, hedge_us, &baseline, &stats,
               trace_capture);
    }
  }
  std::fclose(out);

  std::printf(
      "\ncells=%llu completed=%llu; rf=1 mid-outage failures=%llu (the seed "
      "layout cannot survive), rf=2 mid-outage completions=%llu, completed "
      "checksums all match baseline: %s\n",
      static_cast<unsigned long long>(stats.cells),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rf1_outage_failures),
      static_cast<unsigned long long>(stats.rf2_outage_completions),
      stats.checksums_agree ? "yes" : "NO");
  std::printf(
      "Expected shape: every rf=2 cell completes (failovers > 0 under "
      "outage), both rf=1 mid-outage cells fail kUnavailable, hedged cells "
      "pay added_reads for their duplicate in-flight reads, and every "
      "completed checksum equals the no-failure baseline.\n");
  return stats.checksums_agree &&
                 stats.rf1_outage_failures == 2 &&
                 stats.rf2_outage_completions == 4
             ? 0
             : 1;
}
