// Ablation: adaptive structure maintenance (§V-B — "workloads are not
// static in recent analytics, so structure maintenance should be adaptive
// to workload changes").
//
// A three-phase workload over TPC-H orders, with the
// AdaptiveStructureManager in the loop:
//   phase A  selective date queries, NO structure: every query scans.
//            The manager observes, and once the modeled saving exceeds the
//            build cost it recommends BUILD — which we apply (a real,
//            charged structure build).
//   phase B  the same selective workload served by the new structure.
//   phase C  the workload shifts to unselective queries; the window slides,
//            the structure stops paying for itself, the manager recommends
//            DROP — which we apply.

#include <cstdio>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "io/key_codec.h"
#include "rede/adaptive.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

constexpr const char* kAttribute = "o_orderdate";

index::IndexSpec DateIndexSpec() {
  index::IndexSpec spec;
  spec.index_name = tpch::names::kOrdersDateIndex;
  spec.base_file = tpch::names::kOrders;
  spec.placement = index::IndexPlacement::kLocal;
  spec.extract = [](const io::Record& record,
                    std::vector<index::Posting>* out) {
    std::string_view row = record.slice().view();
    index::Posting posting;
    posting.index_key = std::string(
        FieldAt(row, tpch::kDelim, tpch::orders::kOrderDate));
    LH_ASSIGN_OR_RETURN(
        int64_t okey,
        ParseInt64(FieldAt(row, tpch::kDelim, tpch::orders::kOrderKey)));
    posting.target_partition_key = io::EncodeInt64Key(okey);
    posting.target_key = posting.target_partition_key;
    out->push_back(std::move(posting));
    return Status::OK();
  };
  return spec;
}

/// Run one date-range query with whichever plan is available: the
/// structure when built, the scan otherwise. Returns (wall ms, matches).
StatusOr<std::pair<double, uint64_t>> RunQuery(
    rede::Engine& engine, baseline::ScanEngine& scan_engine, bool structured,
    const tpch::Q5Params& params, bench::TraceCapture& trace_capture) {
  StopWatch watch;
  uint64_t matches = 0;
  if (structured) {
    LH_ASSIGN_OR_RETURN(auto orders,
                        engine.catalog().Get(tpch::names::kOrders));
    auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
        *engine.catalog().Get(tpch::names::kOrdersDateIndex));
    LH_ASSIGN_OR_RETURN(
        rede::Job job,
        rede::JobBuilder("date-select")
            .Initial(rede::Tuple::Range(
                io::Pointer::Broadcast(params.date_lo),
                io::Pointer::Broadcast(params.date_hi)))
            .Add(rede::MakeRangeDereferencer("deref-idx", idx))
            .Add(rede::MakeIndexEntryReferencer("ref-order"))
            .Add(rede::MakePointDereferencer("deref-orders", orders))
            .Build());
    LH_ASSIGN_OR_RETURN(auto result,
                        engine.Execute(job, rede::ExecutionMode::kSmpe,
                                       [&matches](const rede::Tuple&) {
                                         ++matches;
                                       }));
    trace_capture.Observe(result, "date-select structured");
  } else {
    LH_ASSIGN_OR_RETURN(auto orders,
                        engine.catalog().Get(tpch::names::kOrders));
    LH_ASSIGN_OR_RETURN(
        auto rows,
        scan_engine.Scan(*orders, baseline::FieldRangePredicate(
                                      tpch::orders::kOrderDate,
                                      params.date_lo, params.date_hi)));
    matches = rows.size();
  }
  return std::make_pair(watch.ElapsedMillis(), matches);
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);
  baseline::ScanEngine scan_engine(&cluster);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  LH_CHECK(tpch::LoadIntoLake(engine, data).ok());
  // Start WITHOUT the date structure: phase A must earn it.
  LH_CHECK(engine.catalog().Drop(tpch::names::kOrdersDateIndex).ok());

  auto orders = *engine.catalog().Get(tpch::names::kOrders);
  rede::AdaptiveOptions adaptive_options;
  adaptive_options.window = 8;
  adaptive_options.per_io_overhead_us = 1500.0;
  rede::AdaptiveStructureManager manager(&cluster, adaptive_options);
  rede::StructureCostInputs inputs;
  inputs.base_bytes = orders->total_bytes();
  inputs.base_records = orders->num_records();
  manager.DeclareCandidate(tpch::names::kOrders, kAttribute, inputs,
                           /*currently_built=*/false);

  bench::PrintHeader("Ablation — adaptive structure maintenance (§V-B)");
  std::printf("%-7s %-12s %-28s %10s %10s\n", "phase", "plan", "event",
              "query-ms", "matches");

  cluster.SetTimingEnabled(true);
  bool built = false;
  auto observe = [&](double selectivity, uint64_t matches) {
    rede::AccessObservation obs;
    obs.base_file = tpch::names::kOrders;
    obs.attribute = kAttribute;
    obs.matches = static_cast<double>(matches);
    obs.ios_per_match = 2.0;  // index entry + order fetch
    obs.scan_bytes = orders->total_bytes();
    (void)selectivity;
    manager.Observe(obs);
  };
  auto maybe_apply = [&](const char* phase) {
    for (const auto& rec : manager.Recommend()) {
      if (rec.action == rede::StructureRecommendation::Action::kBuild &&
          !built) {
        StopWatch watch;
        LH_CHECK(engine.index_builder().Build(DateIndexSpec()).ok());
        LH_CHECK(manager.SetBuilt(rec.base_file, rec.attribute, true).ok());
        built = true;
        std::printf("%-7s %-12s %-28s %10.2f %10s\n", phase, "-",
                    "manager: BUILD structure", watch.ElapsedMillis(), "-");
      } else if (rec.action == rede::StructureRecommendation::Action::kDrop &&
                 built) {
        LH_CHECK(engine.catalog().Drop(tpch::names::kOrdersDateIndex).ok());
        LH_CHECK(manager.SetBuilt(rec.base_file, rec.attribute, false).ok());
        built = false;
        std::printf("%-7s %-12s %-28s %10s %10s\n", phase, "-",
                    "manager: DROP structure", "-", "-");
      }
    }
  };
  auto run_phase = [&](const char* phase, double selectivity, int queries) {
    for (int i = 0; i < queries; ++i) {
      tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
      auto result =
          RunQuery(engine, scan_engine, built, params, trace_capture);
      LH_CHECK(result.ok());
      std::printf("%-7s %-12s %-28s %10.2f %10llu\n", phase,
                  built ? "structure" : "scan", "query", result->first,
                  static_cast<unsigned long long>(result->second));
      observe(selectivity, result->second);
      maybe_apply(phase);
    }
  };

  run_phase("A", 0.01, 4);   // selective, unindexed: scans until BUILD fires
  run_phase("B", 0.01, 3);   // selective, now served by the structure
  run_phase("C", 0.9, 9);    // workload shift: window slides, DROP fires

  std::printf(
      "\nExpected shape: phase A scans until the manager's modeled window "
      "saving exceeds the build cost, then BUILD; phase B queries drop by "
      "an order of magnitude; phase C's unselective shift slides the window "
      "until DROP — the §V-B loop closed end to end.\n");
  return 0;
}
