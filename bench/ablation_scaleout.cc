// Ablation: cluster scale-out — the "scalable" in scalable massively
// parallel execution. The paper's testbed fixed 128 nodes; this sweep
// grows the simulated cluster at a fixed Q5' workload and shows how each
// system's time responds to added nodes:
//   - the scan baseline and SMPE both scale out (more disks, more
//     bandwidth, more concurrent I/O slots);
//   - ReDe w/o SMPE barely moves once per-node work is serial — its
//     parallelism is pinned to the partition count, which is the point of
//     Fig 7's contrast.
//
// Part 2 — rebalance ablation (elastic membership): a node joins a live
// cluster and the Rebalancer migrates partitions onto it as background
// kMigration jobs while foreground traffic (Q5', claims Q1, point
// lookups) keeps running, with disk faults injected and one whole-node
// outage struck mid-migration. The sweep varies the copy throttle rate
// and reports foreground Q5' wall time and point-lookup p99 static vs
// during the rebalance — the cost of moving data faster is foreground
// tail latency. Correctness is LH_CHECKed, not just reported: every
// during-rebalance answer must be bit-identical to the static baseline,
// every overlapped job's profile must reconcile, and the scheduler must
// drain with zero leaked in-flight work. One JSON row per throttle rate
// goes to stdout and BENCH_rebalance.json (override with LH_BENCH_OUT).
//
// Env overrides: LH_BENCH_SF, LH_BENCH_NODES, LH_BENCH_THREADS,
// LH_BENCH_CLAIMS, LH_BENCH_LOOKUPS, LH_BENCH_TIMESCALE, LH_BENCH_OUT.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "claims/generator.h"
#include "claims/loader.h"
#include "claims/queries.h"
#include "common/clock.h"
#include "common/json.h"
#include "io/key_codec.h"
#include "io/rebalancer.h"
#include "obs/profile.h"
#include "rede/builtin_derefs.h"
#include "rede/engine.h"
#include "sched/scheduler.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ull;

uint64_t Fnv1a(uint64_t digest, const std::string& piece) {
  digest ^= std::hash<std::string>{}(piece);
  return digest * 1099511628211ull;
}

struct RebalanceConfig {
  uint32_t nodes = 4;
  double scale_factor = 0.005;
  uint64_t num_claims = 4000;
  size_t threads_per_node = 32;
  int lookups = 24;
  /// Simulated-time multiplier. Large enough that simulated device waits
  /// dominate real thread-scheduling jitter — at tiny scales the p99
  /// comparison measures OS noise, not I/O contention.
  double time_scale = 0.5;
  /// Wall time each measured phase spends running back-to-back
  /// lookup-only waves. Long enough to span several migration chunk
  /// arrivals even at the tightest throttle, so the lookup tail samples
  /// the copy stream rather than aliasing with it.
  int64_t lookup_window_ms = 600;
};

/// One wave of foreground traffic through `scheduler`: Q5' and claims Q1
/// as analytical scans plus `lookup_jobs` as point lookups, all submitted
/// up front so they genuinely overlap whatever else the scheduler is
/// running (a migration backlog, in the during-rebalance phase). Answers
/// are digested order-independently; every job's profile must reconcile.
struct ForegroundOutcome {
  std::string q5_sum;
  std::string claims_sum;
  uint64_t lookup_sum = 0;
  bool has_scans = false;
  bool has_lookups = false;
  double q5_ms = 0.0;
  double wall_ms = 0.0;
};

/// Which jobs a wave submits. Combined waves model the mixed chaos
/// workload; the measured waves separate scans from lookups so the
/// lookup tail reflects device contention, not queueing behind the
/// scans submitted alongside.
enum class WaveKind { kCombined, kScansOnly, kLookupsOnly };

ForegroundOutcome RunForeground(sched::JobScheduler& scheduler,
                                const rede::Job& q5_job,
                                const rede::Job& claims_job,
                                const std::vector<rede::Job>& lookup_jobs,
                                WaveKind kind,
                                sched::JobClass lookup_class) {
  struct Pending {
    sched::JobHandlePtr handle;
    std::unique_ptr<rede::TupleCollector> collector;
  };
  auto submit = [&](const rede::Job& job, const char* tenant,
                    sched::JobClass job_class) {
    Pending p;
    p.collector = std::make_unique<rede::TupleCollector>();
    sched::JobSpec spec;
    spec.tenant = tenant;
    spec.job_class = job_class;
    spec.sink = p.collector->AsSink();
    auto handle = scheduler.Submit(job, std::move(spec));
    LH_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
    p.handle = *handle;
    return p;
  };
  auto reconciled_wait = [](Pending& p) {
    auto result = p.handle->Wait();
    LH_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    obs::JobProfile profile = rede::ProfileOf(*result);
    LH_CHECK_MSG(profile.Reconciles(),
                 profile.warnings().empty() ? "profile does not reconcile"
                                            : profile.warnings().front().c_str());
  };

  const bool want_scans = kind != WaveKind::kLookupsOnly;
  const bool want_lookups = kind != WaveKind::kScansOnly;
  const int64_t t0 = NowMicros();
  Pending q5;
  Pending q1;
  if (want_scans) {
    q5 = submit(q5_job, "analytics", sched::JobClass::kAnalyticalScan);
    q1 = submit(claims_job, "analytics", sched::JobClass::kAnalyticalScan);
  }
  std::vector<Pending> lookups;
  lookups.reserve(lookup_jobs.size());
  if (want_lookups) {
    for (const rede::Job& job : lookup_jobs) {
      lookups.push_back(submit(job, "serving", lookup_class));
    }
  }

  ForegroundOutcome outcome;
  if (want_scans) {
    outcome.has_scans = true;
    reconciled_wait(q5);
    outcome.q5_ms = static_cast<double>(NowMicros() - t0) / 1000.0;
    {
      auto summary = tpch::SummarizeRedeOutput(q5.collector->TakeTuples());
      LH_CHECK(summary.ok());
      uint64_t digest = kFnvSeed;
      for (const std::string& key : summary->keys) digest = Fnv1a(digest, key);
      outcome.q5_sum = "q5:" + std::to_string(summary->rows) + ":" +
                       std::to_string(digest);
    }
    reconciled_wait(q1);
    {
      auto answer = claims::SummarizeRawOutput(q1.collector->TakeTuples());
      LH_CHECK(answer.ok());
      outcome.claims_sum = "claims:" + std::to_string(answer->distinct_claims) +
                           ":" + std::to_string(answer->total_expense);
    }
  }
  if (want_lookups) {
    outcome.has_lookups = true;
    uint64_t digest = kFnvSeed;
    for (Pending& p : lookups) {
      reconciled_wait(p);
      std::vector<rede::Tuple> tuples = p.collector->TakeTuples();
      LH_CHECK_MSG(tuples.size() == 1, "pk lookup must return exactly one row");
      std::string row;
      for (const io::Record& record : tuples[0].records) {
        row += record.bytes();
        row += '#';
      }
      digest = Fnv1a(digest, row);
    }
    outcome.lookup_sum = digest;
  }
  outcome.wall_ms = static_cast<double>(NowMicros() - t0) / 1000.0;
  return outcome;
}

/// Quiescence within a bounded grace period (JobHandle::Wait returns a
/// hair before the worker releases its slot).
bool SchedulerDrained(const sched::JobScheduler& scheduler) {
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.queued() == 0 && scheduler.running() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

void EmitHist(Json* row, const std::string& prefix,
              const obs::HistogramSnapshot& hist) {
  row->Set(prefix + "_p50", Json::MakeNumber(static_cast<double>(hist.P50())));
  row->Set(prefix + "_p95", Json::MakeNumber(static_cast<double>(hist.P95())));
  row->Set(prefix + "_p99", Json::MakeNumber(static_cast<double>(hist.P99())));
  row->Set(prefix + "_mean", Json::MakeNumber(hist.Mean()));
}

struct RebalanceCell {
  uint64_t throttle_bytes_per_sec = 0;
  ForegroundOutcome static_run;
  ForegroundOutcome during_run;
  obs::HistogramSnapshot lookup_static_us;
  obs::HistogramSnapshot lookup_during_us;
  io::RebalanceReport report;
  uint64_t chunks_copied = 0;
};

/// One cell of the rebalance ablation: fresh cluster + lake, a static
/// foreground baseline, then a node join rebalanced at `throttle` with
/// disk faults on and node 1 struck mid-migration while the same
/// foreground wave runs. Answers must match the baseline bit for bit.
RebalanceCell RunRebalanceCell(uint64_t throttle, const RebalanceConfig& cfg,
                               const tpch::TpchData& tpch_data,
                               const claims::ClaimsData& claims_data) {
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes = cfg.nodes;
  sim::ClusterOptions cluster_options =
      bench::MakeClusterOptions(cluster_config);
  cluster_options.max_nodes = cfg.nodes + 1;  // headroom for the join
  cluster_options.disk.time_scale = cfg.time_scale;
  cluster_options.network.time_scale = cfg.time_scale;
  sim::Cluster cluster(cluster_options);

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = cfg.threads_per_node;
  engine_options.smpe.trace_sample_n = 1;  // Reconciles() gate on every job
  engine_options.smpe.retry.max_retries = 8;
  engine_options.smpe.retry.backoff_initial_us = 50;
  engine_options.smpe.retry.backoff_max_us = 2000;
  rede::Engine engine(&cluster, engine_options);

  // rf=2 so the mid-migration outage leaves both foreground reads and
  // migration sources a live replica to fail over to.
  tpch::LoadOptions tpch_load;
  tpch_load.partitions = cfg.nodes * 2;
  tpch_load.replication_factor = 2;
  LH_CHECK(tpch::LoadIntoLake(engine, tpch_data, tpch_load).ok());
  claims::ClaimsLoadOptions claims_load;
  claims_load.replication_factor = 2;
  LH_CHECK(claims::LoadRawClaims(engine, claims_data, claims_load).ok());

  auto q5_job = tpch::BuildQ5RedeJob(engine, tpch::MakeQ5Params(0.05));
  LH_CHECK(q5_job.ok());
  auto claims_q1 = claims::BuildRawClaimsJob(engine, claims::AllQueries()[0]);
  LH_CHECK(claims_q1.ok());
  auto claims_file = engine.catalog().Get(claims::names::kRawClaims);
  LH_CHECK(claims_file.ok());
  const uint64_t id_step =
      std::max<uint64_t>(1, claims_data.raw.size() / (cfg.lookups + 1));
  std::vector<rede::Job> lookup_jobs;
  lookup_jobs.reserve(cfg.lookups);
  for (int i = 0; i < cfg.lookups; ++i) {
    const int64_t claim_id =
        static_cast<int64_t>(1 + (i * id_step) % claims_data.raw.size());
    auto job = rede::JobBuilder("pk-" + std::to_string(i))
                   .Initial(rede::Tuple::Point(
                       io::Pointer::Keyed(io::EncodeInt64Key(claim_id))))
                   .Add(rede::MakePointDereferencer("pk-deref", *claims_file))
                   .Build();
    LH_CHECK(job.ok());
    lookup_jobs.push_back(*std::move(job));
  }

  cluster.SetTimingEnabled(true);  // measured phases only

  RebalanceCell cell;
  cell.throttle_bytes_per_sec = throttle;

  // Generous execution slots: with slots scarce, lookup latency is
  // dominated by slot queueing behind the scans and the migration's
  // contention disappears into that noise. The scarce resource here is
  // the io_tokens — exactly what background copies compete for. The pool
  // is kept small so the 2 tokens a running copy chunk holds are a large
  // fraction of capacity: the during/static contrast is then the fraction
  // of time a chunk is in flight, which the throttle rate sets directly.
  sched::SchedulerOptions sched_options;
  sched_options.execution_slots = 16;
  sched_options.io_tokens = 4;

  // Both measured phases run under transient disk faults at a nonzero
  // rate. Each phase opens with an OUTAGE wave — the same faults plus a
  // 40 ms outage of node 1, a replica of half the partitions (so
  // foreground reads fail over to it) and, in the during-rebalance phase,
  // a live migration source — whose job is the correctness gates, not
  // latency: its lookups ride the scan class so the point-lookup
  // histograms hold only the measured waves, where the outage-response
  // randomness (which jobs land in the window) would otherwise bury the
  // throttle sweep's signal.
  sim::FaultOptions faults;
  faults.fault_rate = 0.01;
  faults.unavailable_fraction = 0.5;
  faults.seed = 1234;

  // Warm-up wave, discarded except for its answers (the clean ground
  // truth): the executor's per-node thread pools are created lazily on
  // the first run, and that cold start would otherwise be charged
  // entirely to the static baseline.
  ForegroundOutcome clean_run;
  {
    sched::JobScheduler scheduler(&engine.executor(rede::ExecutionMode::kSmpe),
                                  sched_options);
    clean_run = RunForeground(scheduler, *q5_job, *claims_q1, lookup_jobs,
                              WaveKind::kCombined,
                              sched::JobClass::kPointLookup);
    LH_CHECK_MSG(SchedulerDrained(scheduler), "warm-up phase leaked work");
  }

  auto check_answers = [&](const ForegroundOutcome& outcome,
                           const char* what) {
    LH_CHECK_MSG((!outcome.has_scans ||
                  (outcome.q5_sum == clean_run.q5_sum &&
                   outcome.claims_sum == clean_run.claims_sum)) &&
                     (!outcome.has_lookups ||
                      outcome.lookup_sum == clean_run.lookup_sum),
                 what);
  };
  auto outage_wave = [&](sched::JobScheduler& scheduler) {
    cluster.ConfigureDiskFaults(faults);  // rewind the fault streams
    cluster.SetNodeOutage(1, true);
    std::thread outage_lifter([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      cluster.SetNodeOutage(1, false);
    });
    ForegroundOutcome outcome =
        RunForeground(scheduler, *q5_job, *claims_q1, lookup_jobs,
                      WaveKind::kCombined, sched::JobClass::kAnalyticalScan);
    outage_lifter.join();
    return outcome;
  };
  // A measured phase runs the scans and the lookups in SEPARATE waves.
  // Submitted together, lookup latency is dominated by queueing behind
  // that same wave's scans — identical static and during — and the
  // migration's device-level contention drowns. Lookup-only waves keep
  // the baseline tail at device scale, where a colliding copy chunk is
  // actually visible; they repeat back to back for a fixed wall window so
  // the samples span several chunk arrivals at every throttle rate.
  //
  // The measured waves run FAULT-FREE: a 1% fault rate puts random
  // multi-ms retry backoffs into the tail, which swamps the throttle
  // sweep's signal. Fault-tolerance correctness is the outage waves' job
  // — those keep faults on (plus the outage) and gate on bit-identical
  // answers.
  constexpr int kScanWavesPerPhase = 2;
  auto measured_phase = [&](sched::JobScheduler& scheduler) {
    cluster.ConfigureDiskFaults(sim::FaultOptions{});
    ForegroundOutcome phase;
    double q5_ms_sum = 0.0;
    for (int wave = 0; wave < kScanWavesPerPhase; ++wave) {
      ForegroundOutcome outcome =
          RunForeground(scheduler, *q5_job, *claims_q1, lookup_jobs,
                        WaveKind::kScansOnly, sched::JobClass::kPointLookup);
      check_answers(outcome, "a measured scan wave changed answers");
      if (wave == 0) phase = outcome;
      q5_ms_sum += outcome.q5_ms;
    }
    phase.q5_ms = q5_ms_sum / kScanWavesPerPhase;
    const int64_t window_end = NowMicros() + cfg.lookup_window_ms * 1000;
    do {
      ForegroundOutcome outcome =
          RunForeground(scheduler, *q5_job, *claims_q1, lookup_jobs,
                        WaveKind::kLookupsOnly, sched::JobClass::kPointLookup);
      check_answers(outcome, "a measured lookup wave changed answers");
      phase.lookup_sum = outcome.lookup_sum;
      phase.has_lookups = true;
    } while (NowMicros() < window_end);
    return phase;
  };

  // Static baseline: outage wave then measured waves, no membership
  // change.
  {
    sched::JobScheduler scheduler(&engine.executor(rede::ExecutionMode::kSmpe),
                                  sched_options);
    check_answers(outage_wave(scheduler),
                  "faults/outage changed answers without any rebalance");
    cell.static_run = measured_phase(scheduler);
    LH_CHECK_MSG(SchedulerDrained(scheduler), "static phase leaked work");
    cell.lookup_static_us =
        scheduler.stats()
            .per_class[static_cast<size_t>(sched::JobClass::kPointLookup)]
            .total_us;
  }

  // During-rebalance phase: identical treatment with a throttled
  // node-join rebalance in the background — the outage now strikes a live
  // migration source once the first chunk has landed, and the measured
  // waves run while partitions are still moving.

  sched::JobScheduler scheduler(&engine.executor(rede::ExecutionMode::kSmpe),
                                sched_options);
  io::RebalanceOptions rebalance_options;
  rebalance_options.throttle_bytes_per_sec = throttle;
  // Chunks big enough that each copy burst occupies the disks long enough
  // for a colliding foreground lookup to notice — with tiny chunks the
  // migration's device time is negligible at this scale and the sweep has
  // nothing to show.
  rebalance_options.copy_chunk_bytes = 128 * 1024;
  // One outstanding copy job: the rate budget is global, so extra
  // concurrent streams only add yield/resubmit churn; a single stream
  // gives the sweep a regular chunk cadence whose foreground impact
  // scales cleanly with the throttle rate.
  rebalance_options.max_concurrent_migrations = 1;
  rebalance_options.retry.max_retries = 100;  // outlive the outage window
  rebalance_options.retry.backoff_initial_us = 500;
  rebalance_options.retry.backoff_max_us = 5000;
  io::Rebalancer rebalancer(&cluster, &scheduler, rebalance_options);
  std::vector<std::shared_ptr<io::File>> files;
  for (const std::string& name : engine.catalog().ListNames()) {
    auto file = engine.catalog().Get(name);
    LH_CHECK(file.ok());
    files.push_back(*file);
    rebalancer.RegisterFile(files.back().get());
  }

  std::atomic<bool> rebalance_done{false};
  StatusOr<sim::NodeId> joined = Status::Internal("not run");
  std::thread rebalance_thread([&] {
    joined = rebalancer.AddNodeAndRebalance();
    rebalance_done.store(true);
  });
  while (rebalancer.progress().chunks_copied.load() == 0 &&
         !rebalance_done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  check_answers(outage_wave(scheduler),
                "answers changed under the mid-migration outage");
  cell.during_run = measured_phase(scheduler);
  // The numbers are only a during-rebalance measurement if the copies
  // were still running when the last measured wave finished.
  LH_CHECK_MSG(!rebalance_done.load(),
               "rebalance finished before the measured waves — lower the "
               "throttle rates or raise the workload");
  rebalance_thread.join();
  LH_CHECK_MSG(joined.ok(), joined.status().ToString().c_str());

  // Remaining gates — reported numbers are meaningless if any fails.
  LH_CHECK_MSG(rebalancer.progress().partitions_done.load() ==
                   rebalancer.progress().partitions_total.load(),
               "rebalance left partitions unmigrated");
  for (const std::shared_ptr<io::File>& file : files) {
    LH_CHECK_MSG(!file->placement_manager().rebalancing(),
                 "a file was left mid-transition");
  }
  LH_CHECK_MSG(SchedulerDrained(scheduler), "rebalance phase leaked work");

  cell.lookup_during_us =
      scheduler.stats()
          .per_class[static_cast<size_t>(sched::JobClass::kPointLookup)]
          .total_us;
  cell.report = rebalancer.last_report();
  cell.chunks_copied = rebalancer.progress().chunks_copied.load();
  cluster.ConfigureDiskFaults(sim::FaultOptions{});
  return cell;
}

void EmitCell(FILE* out, const RebalanceCell& cell,
              const RebalanceConfig& cfg) {
  Json row = Json::MakeObject();
  row.Set("bench", Json::MakeString("rebalance"));
  row.Set("nodes", Json::MakeNumber(static_cast<double>(cfg.nodes)));
  row.Set("throttle_bytes_per_sec",
          Json::MakeNumber(static_cast<double>(cell.throttle_bytes_per_sec)));
  row.Set("q5_static_ms", Json::MakeNumber(cell.static_run.q5_ms));
  row.Set("q5_during_ms", Json::MakeNumber(cell.during_run.q5_ms));
  row.Set("foreground_static_ms", Json::MakeNumber(cell.static_run.wall_ms));
  row.Set("foreground_during_ms", Json::MakeNumber(cell.during_run.wall_ms));
  EmitHist(&row, "lookup_static_us", cell.lookup_static_us);
  EmitHist(&row, "lookup_during_us", cell.lookup_during_us);
  // The headline: foreground tail degradation relative to THIS cell's own
  // static baseline (each cell is a fresh cluster, so cross-row absolute
  // latencies are not comparable — the ratios are).
  const double static_p99 = static_cast<double>(cell.lookup_static_us.P99());
  row.Set("lookup_p99_degradation",
          Json::MakeNumber(static_p99 > 0
                               ? static_cast<double>(
                                     cell.lookup_during_us.P99()) /
                                     static_p99
                               : 0.0));
  row.Set("q5_degradation",
          Json::MakeNumber(cell.static_run.q5_ms > 0
                               ? cell.during_run.q5_ms / cell.static_run.q5_ms
                               : 0.0));
  row.Set("rebalance_ms",
          Json::MakeNumber(static_cast<double>(cell.report.elapsed_ms)));
  row.Set("bytes_copied",
          Json::MakeNumber(static_cast<double>(cell.report.bytes_copied)));
  row.Set("chunks_copied",
          Json::MakeNumber(static_cast<double>(cell.chunks_copied)));
  row.Set("chunk_retries",
          Json::MakeNumber(static_cast<double>(cell.report.chunk_retries)));
  row.Set("source_failovers",
          Json::MakeNumber(static_cast<double>(cell.report.source_failovers)));
  row.Set("job_resubmissions", Json::MakeNumber(static_cast<double>(
                                   cell.report.job_resubmissions)));
  row.Set("throttle_yields",
          Json::MakeNumber(static_cast<double>(cell.report.throttle_yields)));
  row.Set("partitions_moved",
          Json::MakeNumber(static_cast<double>(cell.report.partitions_moved)));
  row.Set("partitions_unchanged", Json::MakeNumber(static_cast<double>(
                                      cell.report.partitions_unchanged)));
  row.Set("committed_epoch",
          Json::MakeNumber(static_cast<double>(cell.report.committed_epoch)));
  row.Set("checksum",
          Json::MakeString(cell.static_run.q5_sum + "|" +
                           cell.static_run.claims_sum + "|pk:" +
                           std::to_string(cell.static_run.lookup_sum)));
  std::string line = row.Dump();
  std::printf("%s\n", line.c_str());
  if (out != nullptr) std::fprintf(out, "%s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::Q5Params params = tpch::MakeQ5Params(0.1);

  bench::PrintHeader("Ablation — cluster scale-out at fixed work (Q5', sel=0.1)");
  std::printf("%-8s %14s %16s %16s %10s\n", "nodes", "baseline-ms",
              "rede-w/o-smpe", "rede-w/-smpe", "peak-par");

  for (uint32_t nodes : {2, 4, 8, 16}) {
    bench::BenchClusterConfig cluster_config;
    cluster_config.num_nodes = nodes;
    sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
    rede::EngineOptions engine_options;
    engine_options.smpe.threads_per_node = 64;
    engine_options.smpe.trace_sample_n = trace_capture.sample_n();
    rede::Engine engine(&cluster, engine_options);
    tpch::LoadOptions load;
    load.partitions = nodes * 2;
    LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());
    baseline::ScanEngine scan_engine(&cluster);
    cluster.SetTimingEnabled(true);

    StopWatch scan_watch;
    LH_CHECK(tpch::RunQ5Baseline(scan_engine, engine.catalog(), params).ok());
    double baseline_ms = scan_watch.ElapsedMillis();

    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());
    auto partitioned =
        engine.Execute(*job, rede::ExecutionMode::kPartitioned, nullptr);
    LH_CHECK(partitioned.ok());
    auto smpe = engine.Execute(*job, rede::ExecutionMode::kSmpe, nullptr);
    LH_CHECK(smpe.ok());
    trace_capture.Observe(*smpe, "Q5' smpe nodes=" + std::to_string(nodes));

    std::printf("%-8u %14.2f %16.2f %16.2f %10lld\n", nodes, baseline_ms,
                partitioned->metrics.wall_ms, smpe->metrics.wall_ms,
                static_cast<long long>(smpe->metrics.peak_parallel_derefs));
  }
  std::printf(
      "\nExpected shape: the baseline and rede-w/o-smpe shrink with the "
      "node count (more aggregate bandwidth; more partition workers), while "
      "SMPE is already near its floor at small clusters — at this "
      "down-scaled workload a couple of hundred concurrent I/Os saturate "
      "the job's available parallelism, so extra nodes buy little (the "
      "strong-scaling limit). SMPE stays the fastest at every size.\n");

  // ------------------------------------------------- rebalance ablation
  RebalanceConfig rebalance_config;
  rebalance_config.nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 4));
  rebalance_config.scale_factor = config.scale_factor;
  rebalance_config.num_claims =
      static_cast<uint64_t>(bench::EnvOr("LH_BENCH_CLAIMS", 4000));
  rebalance_config.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 32));
  // Few enough concurrent lookups that a wave barely queues on the 8 io
  // tokens: the baseline tail then sits at device scale, where a copy
  // chunk colliding on a disk is a large relative hit instead of noise
  // under self-queueing.
  rebalance_config.lookups =
      static_cast<int>(bench::EnvOr("LH_BENCH_LOOKUPS", 16));
  rebalance_config.time_scale = bench::EnvOr("LH_BENCH_TIMESCALE", 0.5);
  rebalance_config.lookup_window_ms =
      static_cast<int64_t>(bench::EnvOr("LH_BENCH_WINDOW_MS", 600));

  claims::ClaimsConfig claims_config;
  claims_config.num_claims = rebalance_config.num_claims;
  const claims::ClaimsData claims_data =
      claims::GenerateClaims(claims_config);

  bench::PrintHeader(
      "Ablation — foreground latency during an online node-join rebalance "
      "(faults on, node 1 struck mid-migration) vs copy throttle");
  std::printf(
      "nodes=%u->%u  SF=%.4f  claims=%llu  lookups=%d  rf=2  "
      "fault-rate=0.01\n\n",
      rebalance_config.nodes, rebalance_config.nodes + 1,
      rebalance_config.scale_factor,
      static_cast<unsigned long long>(rebalance_config.num_claims),
      rebalance_config.lookups);

  const char* out_path_env = std::getenv("LH_BENCH_OUT");
  const std::string out_path =
      out_path_env != nullptr ? out_path_env : "BENCH_rebalance.json";
  FILE* out = std::fopen(out_path.c_str(), "w");
  LH_CHECK_MSG(out != nullptr, ("cannot open " + out_path).c_str());

  std::printf("%-14s %12s %12s %14s %14s %10s %12s\n", "throttle-B/s",
              "q5-static", "q5-during", "pk-p99-static", "pk-p99-during",
              "p99-degr", "rebalance");
  // Ascending copy aggressiveness, spaced 4x apart so each step's extra
  // disk occupancy clears the run-to-run noise floor: the faster the
  // migration moves bytes, the more often a foreground lookup lands
  // behind a copy chunk and the higher the during-rebalance tail.
  for (uint64_t throttle : {uint64_t{128} * 1024, uint64_t{512} * 1024,
                            uint64_t{2048} * 1024}) {
    RebalanceCell cell =
        RunRebalanceCell(throttle, rebalance_config, data, claims_data);
    EmitCell(out, cell, rebalance_config);
    const double p99_degradation =
        cell.lookup_static_us.P99() > 0
            ? static_cast<double>(cell.lookup_during_us.P99()) /
                  static_cast<double>(cell.lookup_static_us.P99())
            : 0.0;
    std::printf("%-14llu %10.1fms %10.1fms %12lluus %12lluus %9.2fx %10llums\n",
                static_cast<unsigned long long>(throttle),
                cell.static_run.q5_ms, cell.during_run.q5_ms,
                static_cast<unsigned long long>(cell.lookup_static_us.P99()),
                static_cast<unsigned long long>(cell.lookup_during_us.P99()),
                p99_degradation,
                static_cast<unsigned long long>(cell.report.elapsed_ms));
  }
  std::fclose(out);
  std::printf(
      "\nExpected shape: every row's during-rebalance answers are "
      "bit-identical to its static baseline (LH_CHECKed). Each cell is a "
      "fresh cluster, so compare p99-degr (during/static within one cell), "
      "not absolute latencies across rows: degradation stays bounded and "
      "grows with the copy rate — a tight throttle hides the migration "
      "from foreground tails (p99-degr near 1.0) at the price of a longer "
      "rebalance; the fastest copy rate finishes soonest and hurts tails "
      "most.\n"
      "results written to %s\n",
      out_path.c_str());
  return 0;
}
