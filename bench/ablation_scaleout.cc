// Ablation: cluster scale-out — the "scalable" in scalable massively
// parallel execution. The paper's testbed fixed 128 nodes; this sweep
// grows the simulated cluster at a fixed Q5' workload and shows how each
// system's time responds to added nodes:
//   - the scan baseline and SMPE both scale out (more disks, more
//     bandwidth, more concurrent I/O slots);
//   - ReDe w/o SMPE barely moves once per-node work is serial — its
//     parallelism is pinned to the partition count, which is the point of
//     Fig 7's contrast.

#include <cstdio>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::Q5Params params = tpch::MakeQ5Params(0.1);

  bench::PrintHeader("Ablation — cluster scale-out at fixed work (Q5', sel=0.1)");
  std::printf("%-8s %14s %16s %16s %10s\n", "nodes", "baseline-ms",
              "rede-w/o-smpe", "rede-w/-smpe", "peak-par");

  for (uint32_t nodes : {2, 4, 8, 16}) {
    bench::BenchClusterConfig cluster_config;
    cluster_config.num_nodes = nodes;
    sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
    rede::EngineOptions engine_options;
    engine_options.smpe.threads_per_node = 64;
    engine_options.smpe.trace_sample_n = trace_capture.sample_n();
    rede::Engine engine(&cluster, engine_options);
    tpch::LoadOptions load;
    load.partitions = nodes * 2;
    LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());
    baseline::ScanEngine scan_engine(&cluster);
    cluster.SetTimingEnabled(true);

    StopWatch scan_watch;
    LH_CHECK(tpch::RunQ5Baseline(scan_engine, engine.catalog(), params).ok());
    double baseline_ms = scan_watch.ElapsedMillis();

    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());
    auto partitioned =
        engine.Execute(*job, rede::ExecutionMode::kPartitioned, nullptr);
    LH_CHECK(partitioned.ok());
    auto smpe = engine.Execute(*job, rede::ExecutionMode::kSmpe, nullptr);
    LH_CHECK(smpe.ok());
    trace_capture.Observe(*smpe, "Q5' smpe nodes=" + std::to_string(nodes));

    std::printf("%-8u %14.2f %16.2f %16.2f %10lld\n", nodes, baseline_ms,
                partitioned->metrics.wall_ms, smpe->metrics.wall_ms,
                static_cast<long long>(smpe->metrics.peak_parallel_derefs));
  }
  std::printf(
      "\nExpected shape: the baseline and rede-w/o-smpe shrink with the "
      "node count (more aggregate bandwidth; more partition workers), while "
      "SMPE is already near its floor at small clusters — at this "
      "down-scaled workload a couple of hundred concurrent I/Os saturate "
      "the job's available parallelism, so extra nodes buy little (the "
      "strong-scaling limit). SMPE stays the fastest at every size.\n");
  return 0;
}
