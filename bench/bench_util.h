#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/chrome_trace.h"
#include "rede/engine.h"
#include "sim/cluster.h"

/// \file bench_util.h
/// Shared setup for the figure-reproduction harnesses. The cluster model
/// scales the paper's testbed (128 nodes, 24-HDD RAID per node, 10 GbE)
/// down to laptop size while keeping the ratio that drives Fig 7: deep
/// device queues make random reads cheap *in aggregate* relative to full
/// scans, until random-read volume grows past the scan cost.

namespace lakeharbor::bench {

struct BenchClusterConfig {
  uint32_t num_nodes = 8;
  size_t io_slots = 24;                ///< spindle-level parallelism per node
  uint64_t random_read_latency_us = 500;
  uint64_t scan_bandwidth_bytes_per_sec = 5ull * 1024 * 1024 / 2;
  uint64_t network_latency_us = 30;
};

inline sim::ClusterOptions MakeClusterOptions(const BenchClusterConfig& c) {
  sim::ClusterOptions options;
  options.num_nodes = c.num_nodes;
  options.disk.io_slots = c.io_slots;
  options.disk.random_read_latency_us = c.random_read_latency_us;
  options.disk.scan_bandwidth_bytes_per_sec = c.scan_bandwidth_bytes_per_sec;
  options.disk.scan_chunk_bytes = 256 * 1024;
  options.network.message_latency_us = c.network_latency_us;
  // Timing stays off for loading; benches flip it on for measured phases.
  options.EnableTiming(false);
  return options;
}

/// Environment-variable override for quick experiments, e.g.
/// LH_BENCH_NODES=16 ./build/bench/fig7_tpch_q5
inline double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

/// Opt-in trace capture for the figure/ablation harnesses.
///
///   ./build/bench/fig7_tpch_q5 --trace-out=/tmp/q5.trace.json
///   LH_TRACE_OUT=/tmp/q5.trace.json ./build/bench/ablation_batch_cache
///
/// When the flag (or LH_TRACE_OUT) is absent, sample_n() is 0 and the
/// harness runs exactly as before — tracing stays off and published numbers
/// are unaffected. When present, the harness plugs sample_n() into
/// SmpeOptions::trace_sample_n, feeds each result to Observe(), and the
/// destructor writes the LAST traced run's Chrome trace_event JSON to the
/// given path (load it at chrome://tracing or ui.perfetto.dev) plus its
/// text JobProfile to stdout.
class TraceCapture {
 public:
  TraceCapture(int argc, char** argv) {
    constexpr const char* kFlag = "--trace-out=";
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
        path_ = argv[i] + std::strlen(kFlag);
      }
    }
    if (path_.empty()) {
      const char* env = std::getenv("LH_TRACE_OUT");
      if (env != nullptr) path_ = env;
    }
  }

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  ~TraceCapture() { Finish(); }

  bool enabled() const { return !path_.empty(); }

  /// Value for SmpeOptions::trace_sample_n (and the partitioned executor's
  /// trace_sample_n): trace every job while capturing, nothing otherwise.
  uint64_t sample_n() const { return enabled() ? 1 : 0; }

  /// Keep the latest traced run; `label` names the bench cell it came from.
  void Observe(const rede::JobResult& result, std::string label = "") {
    if (!enabled() || result.trace == nullptr) return;
    last_ = result;
    label_ = std::move(label);
  }
  void Observe(const rede::CollectedResult& result, std::string label = "") {
    rede::JobResult as_job;
    as_job.metrics = result.metrics;
    as_job.trace = result.trace;
    Observe(as_job, std::move(label));
  }

  /// Write the captured trace (idempotent; also run by the destructor).
  void Finish() {
    if (!enabled() || last_.trace == nullptr || finished_) return;
    finished_ = true;
    std::printf("\n-- trace capture (%s) --\n",
                label_.empty() ? "last traced run" : label_.c_str());
    std::printf("%s", rede::ProfileOf(last_).ToText().c_str());
    Status status = obs::WriteChromeTraceFile(*last_.trace, path_);
    if (status.ok()) {
      std::printf("chrome trace written to %s (open at chrome://tracing)\n",
                  path_.c_str());
    } else {
      std::printf("trace write FAILED: %s\n", status.ToString().c_str());
    }
  }

 private:
  std::string path_;
  std::string label_;
  rede::JobResult last_;
  bool finished_ = false;
};

}  // namespace lakeharbor::bench
