#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/cluster.h"

/// \file bench_util.h
/// Shared setup for the figure-reproduction harnesses. The cluster model
/// scales the paper's testbed (128 nodes, 24-HDD RAID per node, 10 GbE)
/// down to laptop size while keeping the ratio that drives Fig 7: deep
/// device queues make random reads cheap *in aggregate* relative to full
/// scans, until random-read volume grows past the scan cost.

namespace lakeharbor::bench {

struct BenchClusterConfig {
  uint32_t num_nodes = 8;
  size_t io_slots = 24;                ///< spindle-level parallelism per node
  uint64_t random_read_latency_us = 500;
  uint64_t scan_bandwidth_bytes_per_sec = 5ull * 1024 * 1024 / 2;
  uint64_t network_latency_us = 30;
};

inline sim::ClusterOptions MakeClusterOptions(const BenchClusterConfig& c) {
  sim::ClusterOptions options;
  options.num_nodes = c.num_nodes;
  options.disk.io_slots = c.io_slots;
  options.disk.random_read_latency_us = c.random_read_latency_us;
  options.disk.scan_bandwidth_bytes_per_sec = c.scan_bandwidth_bytes_per_sec;
  options.disk.scan_chunk_bytes = 256 * 1024;
  options.network.message_latency_us = c.network_latency_us;
  // Timing stays off for loading; benches flip it on for measured phases.
  options.EnableTiming(false);
  return options;
}

/// Environment-variable override for quick experiments, e.g.
/// LH_BENCH_NODES=16 ./build/bench/fig7_tpch_q5
inline double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace lakeharbor::bench
