// Ablation: broadcast join vs global-index join (§III-B expressibility —
// "broadcast joins can be expressed by passing a null value to the
// partition information of the pointer").
//
// The Fig 3/4 Part-Lineitem join routed two ways: the l_partkey pointer is
// either hash-routed to exactly the index partition holding the key
// (global-index join) or replicated to every partition (broadcast join).
// Results are identical; the cost profile differs — broadcast multiplies
// index probes and network messages by the partition count.

#include <cstdio>

#include "bench/bench_util.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/part_join.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.build_part_join_indexes = true;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  // Membership structure over the l_partkey index partitions, for the
  // bloom-assisted broadcast variant.
  auto idx_for_bloom = std::dynamic_pointer_cast<io::PartitionedFile>(
      *engine.catalog().Get(tpch::names::kLineitemPartKeyIndex));
  LH_CHECK(idx_for_bloom != nullptr);
  auto bloom_result = index::PartitionBloom::Build(*idx_for_bloom);
  LH_CHECK(bloom_result.ok());
  auto bloom = std::make_shared<const index::PartitionBloom>(
      std::move(*bloom_result));

  bench::PrintHeader(
      "Ablation — broadcast join vs global-index join (Part-Lineitem)");
  std::printf("%-14s %-16s %10s %10s %12s %14s %12s %12s\n", "price-range",
              "routing", "rows", "wall-ms", "broadcasts", "net-messages",
              "idx-probes", "bloom-skips");

  cluster.SetTimingEnabled(true);
  for (double width : {0.5, 2.0, 8.0}) {
    for (int variant = 0; variant < 3; ++variant) {
      tpch::PartJoinParams params;
      params.price_lo = 900.0;
      params.price_hi = 900.0 + width;
      params.broadcast = variant > 0;
      if (variant == 2) params.index_bloom = bloom;
      auto job = tpch::BuildPartLineitemJoinJob(engine, params);
      LH_CHECK(job.ok());
      engine.catalog().ResetAccessStats();
      cluster.ResetStats();
      uint64_t rows = 0;
      auto result =
          engine.Execute(*job, rede::ExecutionMode::kSmpe,
                         [&rows](const rede::Tuple&) { ++rows; });
      LH_CHECK(result.ok());
      trace_capture.Observe(
          *result, std::string("part-join ") +
                       (variant == 0 ? "indexed"
                                     : variant == 1 ? "broadcast"
                                                    : "broadcast+bloom"));
      auto idx = *engine.catalog().Get(tpch::names::kLineitemPartKeyIndex);
      const char* label = variant == 0   ? "global"
                          : variant == 1 ? "broadcast"
                                         : "broadcast+bloom";
      std::printf("%-14.1f %-16s %10llu %10.2f %12llu %14llu %12llu %12llu\n",
                  width, label, static_cast<unsigned long long>(rows),
                  result->metrics.wall_ms,
                  static_cast<unsigned long long>(result->metrics.broadcasts),
                  static_cast<unsigned long long>(
                      cluster.TotalStats().network_messages),
                  static_cast<unsigned long long>(
                      idx->access_stats().lookups.load()),
                  static_cast<unsigned long long>(
                      idx->access_stats().bloom_skips.load()));
    }
  }
  std::printf(
      "\nExpected shape: identical row counts; the plain broadcast plan "
      "pays ~partition-count times the index probes and extra network "
      "messages; a per-partition membership structure claws most of those "
      "probes back, leaving broadcast viable when the partitioning key "
      "does not match the join key.\n");
  return 0;
}
