// Reproduces Fig 7: "Performance comparison between a data lake system and
// a LakeHarbor system (ReDe)" — TPC-H Q5' execution time vs selectivity for
//   - Impala-like baseline (full scans + grace hash joins, no indexes),
//   - ReDe w/o SMPE     (structures + partitioned parallelism only),
//   - ReDe w/ SMPE      (structures + scalable massively parallel exec).
//
// The paper ran SF=128K on 128 HDD-array nodes; this harness runs a scaled
// configuration on the simulated cluster (see DESIGN.md §3). Absolute times
// differ from the paper by construction; the *shape* is the reproduction
// target: SMPE wins by ~an order of magnitude over the low/mid selectivity
// range, w/o-SMPE barely beats the baseline and only at the lowest
// selectivities, and both ReDe variants lose to the scan-based plan once
// selectivity is high.
//
// Env overrides: LH_BENCH_NODES, LH_BENCH_SF, LH_BENCH_THREADS.

#include <cstdio>
#include <vector>

#include "baseline/scan_engine.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"

using namespace lakeharbor;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(bench::EnvOr("LH_BENCH_NODES", 8));
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));

  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node =
      static_cast<size_t>(bench::EnvOr("LH_BENCH_THREADS", 125));
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  baseline::ScanEngine scan_engine(&cluster);

  bench::PrintHeader(
      "Fig 7 — TPC-H Q5' execution time vs selectivity (log-log in paper)");
  std::printf("nodes=%u  SF=%.4f  orders=%zu  lineitem=%zu  "
              "smpe-threads/node=%zu\n\n",
              cluster.num_nodes(), config.scale_factor, data.orders.size(),
              data.lineitem.size(), engine_options.smpe.threads_per_node);
  std::printf("%-12s %-22s %12s %12s %14s %10s\n", "selectivity", "system",
              "wall-ms", "rows", "rec-accesses", "peak-par");

  const double selectivities[] = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                  3e-2, 1e-1, 3e-1, 1.0};
  cluster.SetTimingEnabled(true);
  for (double selectivity : selectivities) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    double baseline_ms = 0.0;

    // --- Impala-like baseline -------------------------------------------
    {
      engine.catalog().ResetAccessStats();
      StopWatch watch;
      auto rows = tpch::RunQ5Baseline(scan_engine, engine.catalog(), params);
      LH_CHECK(rows.ok());
      baseline_ms = watch.ElapsedMillis();
      std::printf("%-12.1e %-22s %12.2f %12zu %14llu %10s\n", selectivity,
                  "impala-baseline", baseline_ms, rows->size(),
                  static_cast<unsigned long long>(
                      engine.catalog().TotalRecordAccesses()),
                  "-");
    }

    // --- ReDe w/o SMPE and w/ SMPE --------------------------------------
    auto job = tpch::BuildQ5RedeJob(engine, params);
    LH_CHECK(job.ok());
    for (auto mode :
         {rede::ExecutionMode::kPartitioned, rede::ExecutionMode::kSmpe}) {
      engine.catalog().ResetAccessStats();
      uint64_t rows = 0;
      auto result = engine.Execute(*job, mode,
                                   [&rows](const rede::Tuple&) { ++rows; });
      LH_CHECK(result.ok());
      trace_capture.Observe(
          *result, StrFormat("Q5' sel=%.1e %s", selectivity,
                             mode == rede::ExecutionMode::kSmpe
                                 ? "rede-w/-smpe"
                                 : "rede-w/o-smpe"));
      const char* label = mode == rede::ExecutionMode::kSmpe
                              ? "rede-w/-smpe"
                              : "rede-w/o-smpe";
      std::printf("%-12.1e %-22s %12.2f %12llu %14llu %10lld", selectivity,
                  label, result->metrics.wall_ms,
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(
                      engine.catalog().TotalRecordAccesses()),
                  static_cast<long long>(
                      result->metrics.peak_parallel_derefs));
      if (mode == rede::ExecutionMode::kSmpe && result->metrics.wall_ms > 0) {
        std::printf("   (%.1fx vs baseline)",
                    baseline_ms / result->metrics.wall_ms);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: rede-w/-smpe >=10x faster than the baseline across "
      "low/mid selectivities; rede-w/o-smpe only marginally better than the "
      "baseline at the lowest selectivities; both ReDe variants cross over "
      "and lose at high selectivity (no query optimizer fallback, as the "
      "paper notes).\n");
  return 0;
}
