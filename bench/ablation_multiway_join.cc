// Ablation: N-way join parallelism (§III-C — "when a data processing job
// is N-way join where N is bigger than two, it could execute with more
// parallelism because it accesses more records").
//
// Builds progressively deeper Reference-Dereference chains from the Q5'
// tables (2-way: orders-lineitem; 3-way: +supplier; 4-way: +customer;
// 5-way: +nation) at a fixed date selectivity and reports how peak
// parallelism and total record accesses grow with join depth.

#include <cstdio>

#include "bench/bench_util.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"
#include "tpch/schema.h"

using namespace lakeharbor;      // NOLINT — bench brevity
using namespace lakeharbor::tpch;  // NOLINT

namespace {

StatusOr<rede::Job> BuildNWayJob(rede::Engine& engine, int ways,
                                 const Q5Params& params) {
  io::Catalog& catalog = engine.catalog();
  LH_ASSIGN_OR_RETURN(auto orders, catalog.Get(names::kOrders));
  LH_ASSIGN_OR_RETURN(auto lineitem, catalog.Get(names::kLineitem));
  LH_ASSIGN_OR_RETURN(auto supplier, catalog.Get(names::kSupplier));
  LH_ASSIGN_OR_RETURN(auto customer, catalog.Get(names::kCustomer));
  LH_ASSIGN_OR_RETURN(auto nation, catalog.Get(names::kNation));
  LH_ASSIGN_OR_RETURN(auto li_idx, catalog.Get(names::kLineitemOrderKeyIndex));
  auto date_idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *catalog.Get(names::kOrdersDateIndex));
  LH_CHECK(date_idx != nullptr);

  using namespace rede;  // NOLINT
  JobBuilder builder(StrFormat("%d-way", ways));
  builder
      .Initial(Tuple::Range(io::Pointer::Broadcast(params.date_lo),
                            io::Pointer::Broadcast(params.date_hi)))
      .Add(MakeRangeDereferencer("d-date-idx", date_idx))
      .Add(MakeIndexEntryReferencer("r-order-ptr"))
      .Add(MakePointDereferencer("d-orders", orders))
      .Add(MakeKeyReferencer("r-orderkey",
                             EncodedInt64FieldInterpreter(orders::kOrderKey),
                             0))
      .Add(MakePointDereferencer("d-li-idx", li_idx))
      .Add(MakeIndexEntryReferencer("r-li-ptr"))
      .Add(MakePointDereferencer("d-lineitem", lineitem));  // 2-way
  if (ways >= 3) {
    builder
        .Add(MakeKeyReferencer(
            "r-suppkey", EncodedInt64FieldInterpreter(lineitem::kSuppKey)))
        .Add(MakePointDereferencer("d-supplier", supplier));
  }
  if (ways >= 4) {
    builder
        .Add(MakeKeyReferencer(
            "r-custkey", EncodedInt64FieldInterpreter(orders::kCustKey), 0))
        .Add(MakePointDereferencer("d-customer", customer));
  }
  if (ways >= 5) {
    builder
        .Add(MakeKeyReferencer(
            "r-nationkey",
            EncodedInt64FieldInterpreter(customer::kNationKey)))
        .Add(MakePointDereferencer("d-nation", nation));
  }
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  TpchData data = Generate(config);
  LH_CHECK(LoadIntoLake(engine, data).ok());

  Q5Params params = MakeQ5Params(0.02);

  bench::PrintHeader("Ablation — N-way join depth vs available parallelism");
  std::printf("date selectivity 0.02, SF=%.4f\n\n", config.scale_factor);
  std::printf("%-8s %10s %10s %14s %10s %14s\n", "N-way", "rows", "wall-ms",
              "deref-invocs", "peak-par", "rec-accesses");

  cluster.SetTimingEnabled(true);
  for (int ways : {2, 3, 4, 5}) {
    auto job = BuildNWayJob(engine, ways, params);
    LH_CHECK(job.ok());
    engine.catalog().ResetAccessStats();
    uint64_t rows = 0;
    auto result = engine.Execute(*job, rede::ExecutionMode::kSmpe,
                                 [&rows](const rede::Tuple&) { ++rows; });
    LH_CHECK(result.ok());
    trace_capture.Observe(*result, std::to_string(ways) + "-way join");
    std::printf("%-8d %10llu %10.2f %14llu %10lld %14llu\n", ways,
                static_cast<unsigned long long>(rows),
                result->metrics.wall_ms,
                static_cast<unsigned long long>(
                    result->metrics.deref_invocations),
                static_cast<long long>(result->metrics.peak_parallel_derefs),
                static_cast<unsigned long long>(
                    engine.catalog().TotalRecordAccesses()));
  }
  std::printf(
      "\nExpected shape: deeper chains access more records and expose more "
      "concurrent dereferences (higher peak parallelism), while wall time "
      "grows sub-linearly — the added stages overlap with existing ones.\n");
  return 0;
}
