// Ablation: structure layout flexibility — local secondary index vs a
// range-partitioned global structure on the same attribute (§III-B names
// both HashPartitioner and RangePartitioner as pre-configured Partitioners;
// LakeHarbor "creates structures flexibly").
//
// A date-range selection over orders is driven two ways:
//   local  — the Fig 7 setup: o_orderdate index partitioned like orders;
//            EVERY partition is probed for every range.
//   range  — a global structure partitioned BY o_orderdate with sampled
//            quantile boundaries; only the partitions intersecting the
//            range are probed (no broadcast at all).
// Both return identical orders; the probe counts and network traffic show
// what layout choice buys.

#include <cstdio>

#include "bench/bench_util.h"
#include "rede/builtin_derefs.h"
#include "rede/builtin_refs.h"
#include "rede/engine.h"
#include "tpch/generator.h"
#include "tpch/loader.h"
#include "tpch/q5.h"
#include "tpch/schema.h"

using namespace lakeharbor;  // NOLINT — bench brevity

namespace {

StatusOr<rede::Job> DateSelectJob(rede::Engine& engine, const char* index_name,
                                  rede::RangeRouting routing,
                                  const tpch::Q5Params& params) {
  LH_ASSIGN_OR_RETURN(auto orders, engine.catalog().Get(tpch::names::kOrders));
  auto idx = std::dynamic_pointer_cast<io::BtreeFile>(
      *engine.catalog().Get(index_name));
  LH_CHECK(idx != nullptr);
  using namespace rede;  // NOLINT
  return JobBuilder(std::string("date-select-") + index_name)
      .Initial(Tuple::Range(io::Pointer::Broadcast(params.date_lo),
                            io::Pointer::Broadcast(params.date_hi)))
      .Add(MakeRangeDereferencer("deref-date-idx", idx, nullptr, routing))
      .Add(MakeIndexEntryReferencer("ref-order-ptr"))
      .Add(MakePointDereferencer("deref-orders", orders))
      .Build();
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceCapture trace_capture(argc, argv);
  bench::BenchClusterConfig cluster_config;
  sim::Cluster cluster(bench::MakeClusterOptions(cluster_config));
  rede::EngineOptions engine_options;
  engine_options.smpe.threads_per_node = 125;
  engine_options.smpe.trace_sample_n = trace_capture.sample_n();
  rede::Engine engine(&cluster, engine_options);

  tpch::TpchConfig config;
  config.scale_factor = bench::EnvOr("LH_BENCH_SF", 0.005);
  tpch::TpchData data = tpch::Generate(config);
  tpch::LoadOptions load;
  load.partitions = cluster.num_nodes() * 2;
  load.build_range_partitioned_date_index = true;
  LH_CHECK(tpch::LoadIntoLake(engine, data, load).ok());

  bench::PrintHeader(
      "Ablation — local secondary vs range-partitioned global structure");
  std::printf("orders=%zu, index partitions=%u\n\n", data.orders.size(),
              load.partitions);
  std::printf("%-12s %-8s %10s %10s %12s %14s\n", "selectivity", "layout",
              "rows", "wall-ms", "idx-probes", "net-messages");

  cluster.SetTimingEnabled(true);
  for (double selectivity : {0.001, 0.01, 0.1}) {
    tpch::Q5Params params = tpch::MakeQ5Params(selectivity);
    struct Variant {
      const char* label;
      const char* index;
      rede::RangeRouting routing;
    };
    const Variant variants[] = {
        {"local", tpch::names::kOrdersDateIndex,
         rede::RangeRouting::kBroadcast},
        {"range", tpch::names::kOrdersDateRangeIndex,
         rede::RangeRouting::kPruneByKeyRange},
    };
    for (const Variant& v : variants) {
      auto job = DateSelectJob(engine, v.index, v.routing, params);
      LH_CHECK(job.ok());
      engine.catalog().ResetAccessStats();
      cluster.ResetStats();
      uint64_t rows = 0;
      auto result =
          engine.Execute(*job, rede::ExecutionMode::kSmpe,
                         [&rows](const rede::Tuple&) { ++rows; });
      LH_CHECK(result.ok());
      trace_capture.Observe(*result, std::string("date-select ") + v.label);
      auto idx = *engine.catalog().Get(v.index);
      std::printf("%-12.0e %-8s %10llu %10.2f %12llu %14llu\n", selectivity,
                  v.label, static_cast<unsigned long long>(rows),
                  result->metrics.wall_ms,
                  static_cast<unsigned long long>(
                      idx->access_stats().range_lookups.load()),
                  static_cast<unsigned long long>(
                      cluster.TotalStats().network_messages));
    }
  }
  std::printf(
      "\nExpected shape: identical rows; the range-partitioned structure "
      "probes only the partitions its key range intersects (1..k of %u) "
      "instead of all of them, at the price of remote entry fetches when "
      "the pruned partitions are not local.\n",
      load.partitions);
  return 0;
}
